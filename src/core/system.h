#ifndef XVU_CORE_SYSTEM_H_
#define XVU_CORE_SYSTEM_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "src/atg/atg.h"
#include "src/atg/publisher.h"
#include "src/common/deadline.h"
#include "src/common/thread_pool.h"
#include "src/core/evaluator.h"
#include "src/core/pipeline.h"
#include "src/core/snapshot.h"
#include "src/core/update.h"
#include "src/dag/maintenance.h"
#include "src/dag/maintenance_engine.h"
#include "src/dag/reachability.h"
#include "src/dag/topo_order.h"
#include "src/obs/obs.h"
#include "src/viewupdate/delete.h"
#include "src/viewupdate/insert.h"

namespace xvu {

/// What to do when an update touches shared subtrees outside r[[p]]
/// (Section 2.1): abort and report, or carry on under the revised
/// semantics (the update applies to every occurrence of the shared
/// subtree, which the DAG realizes structurally).
enum class SideEffectPolicy { kAbort, kProceed };

/// Per-update timing and size statistics, matching the breakdown reported
/// in Fig.11: (a) XPath evaluation, (b) translation ∆X→∆V→∆R plus update
/// execution, (c) auxiliary-structure maintenance. This struct is the
/// *last-op* view and dies with the next call; the cumulative view across
/// a workload — counters, and latency distributions with p50/p95/p99 —
/// lives in the process-wide obs::MetricsRegistry (src/obs/metrics.h, see
/// docs/observability.md for the metric catalogue).
struct UpdateStats {
  double xpath_seconds = 0;
  double translate_seconds = 0;
  double maintain_seconds = 0;
  size_t selected = 0;       ///< |r[[p]]|
  size_t parent_edges = 0;   ///< |Ep(r)|
  size_t delta_v = 0;        ///< view rows touched
  size_t delta_r = 0;        ///< base tuples touched
  size_t subtree_edges = 0;  ///< |E_A| for insertions
  bool had_side_effects = false;
  bool used_sat = false;

  /// Batched-pipeline counters. ApplyBatch fills them for the whole batch;
  /// the per-op entry points report the single-op equivalents (batch_ops =
  /// xpath_evaluations = maintenance_passes = 1), so callers can compare
  /// the two paths uniformly.
  /// dag().version() the op/batch evaluated against (the pre-write read
  /// epoch). After a successful write the maintenance cursor and the
  /// published read epoch both land on the new dag().version(), strictly
  /// past this value; pipeline_test asserts the invariant.
  uint64_t snapshot_version = 0;

  size_t batch_ops = 0;          ///< ops in this unit of work
  size_t distinct_paths = 0;     ///< distinct normal-form path keys
  size_t xpath_evaluations = 0;  ///< actual evaluator runs (cache misses)
  size_t xpath_cache_hits = 0;   ///< evaluations served from PathEvalCache
  size_t maintenance_passes = 0;

  /// Journal/engine counters. `maintenance_strategy` is what actually ran
  /// (per-op paths report kIncrementalMerge: Fig.7/8 are incremental by
  /// construction); `journal_entries_replayed` is the ∆V window length the
  /// batch merge consumed. `delta_patches` counts cached XPath node-sets
  /// brought forward across DAG versions by journal patching, and
  /// `fallback_evals` the stale entries where patching was not applicable
  /// and a fresh evaluation ran instead.
  MaintenanceStrategy maintenance_strategy = MaintenanceStrategy::kAuto;
  size_t journal_entries_replayed = 0;
  size_t delta_patches = 0;
  size_t fallback_evals = 0;

  /// Parallel-pipeline counters. `workers` is the lane count ApplyBatch
  /// ran with (Options::worker_threads); `parallel_eval_tasks` the
  /// distinct-path evaluations fanned out in Phase 1 (= cache misses) and
  /// `symbolic_tasks` the independent side-effect passes of the insert
  /// translation. `symbolic_candidates` counts the symbolic join work
  /// items examined — near-linear in |∆V| with the template index,
  /// quadratic without; `dedup_ops` the ops that shared an already-seen
  /// normal-form key this batch (each cost zero additional cache probes).
  size_t workers = 1;
  size_t parallel_eval_tasks = 0;
  size_t symbolic_tasks = 0;
  size_t symbolic_candidates = 0;
  size_t dedup_ops = 0;

  /// SAT-portfolio counters (all zero when used_sat is false). Aggregated
  /// over every lane the insert translation's solver ran:
  /// `sat_propagations`/`sat_conflicts`/`sat_learned_clauses` from the
  /// CDCL lane, `sat_flips` from the WalkSAT lanes. `sat_winner_lane` is
  /// the portfolio's fixed-priority winner (0..K-1 = WalkSAT lane, K =
  /// CDCL lane, -1 = none / legacy chain) and `sat_seconds` the solver
  /// wall time inside translate_seconds.
  size_t sat_propagations = 0;
  size_t sat_conflicts = 0;
  size_t sat_learned_clauses = 0;
  size_t sat_flips = 0;
  int sat_winner_lane = -1;
  double sat_seconds = 0;

  double total_seconds() const {
    return xpath_seconds + translate_seconds + maintain_seconds;
  }
};

/// The end-to-end XML view update processor of Fig.3.
///
/// Owns the published state: the base database I, the DAG compression of
/// σ(I), its relational coding V_σ (ViewStore), and the auxiliary
/// structures L and M. Each update runs the pipeline
///   DTD validation → XPath evaluation + side-effect detection →
///   ∆X→∆V translation → ∆V→∆R translation → apply → incremental
///   maintenance + garbage collection,
/// rejecting as early as possible and leaving all state untouched on
/// rejection.
class UpdateSystem {
 public:
  struct Options {
    SideEffectPolicy side_effects = SideEffectPolicy::kProceed;
    InsertOptions insert;
    /// Use the minimal-deletion solver instead of Algorithm delete's
    /// arbitrary pick (Section 4.2 "Minimal Deletions").
    bool minimal_deletions = false;
    /// Batch maintenance strategy: kAuto picks incremental-merge vs full
    /// rebuild per batch by the |journal| vs |V| cost model; the explicit
    /// values force one path (benchmarks, tests).
    MaintenanceStrategy maintenance = MaintenanceStrategy::kAuto;
    /// Worker lanes for ApplyBatch's read-only phases (the per-distinct-
    /// path XPath evaluations of Phase 1 and the symbolic side-effect
    /// passes of the insert translation). 1 = fully serial, no threads
    /// spawned. Results are bit-identical for every value: all parallel
    /// work reads one immutable snapshot, writes per-task slots, and is
    /// merged in serial order.
    size_t worker_threads = 1;
    /// Wall-clock budget per ApplyInsert/ApplyDelete/ApplyBatch call;
    /// 0 = unbounded. On expiry the op rejects with kDeadlineExceeded
    /// after a full rollback (never partial state); the deadline is also
    /// threaded into the SAT portfolio and the branch-and-bound cover,
    /// whose anytime search degrades to its incumbent instead.
    double op_timeout_seconds = 0;
    /// Observability switches, applied process-wide at Create/Initialize
    /// (the metrics registry and trace rings are process singletons, like
    /// the fail-point registry). Metrics on by default; tracing opt-in.
    obs::ObsConfig obs;
  };

  /// Publishes σ(db) and builds all auxiliary structures.
  static Result<std::unique_ptr<UpdateSystem>> Create(Atg atg, Database db,
                                                      Options options);
  static Result<std::unique_ptr<UpdateSystem>> Create(Atg atg, Database db);

  /// Applies `insert (elem_type, attr) into p`.
  Status ApplyInsert(const std::string& elem_type, const Tuple& attr,
                     const Path& p);
  /// Applies `delete p`.
  Status ApplyDelete(const Path& p);
  /// Parses and applies a textual update statement.
  Status ApplyStatement(const std::string& stmt);

  /// Applies a whole batch atomically under snapshot semantics (see
  /// UpdateBatch): one shared XPath evaluation per distinct normalized
  /// path, one consolidated ∆V → ∆R translation, one ∆R application, and
  /// one deferred maintenance pass — instead of the per-op pipeline run N
  /// times. Rejected (leaving all state untouched) on any per-op
  /// validation failure or intra-batch conflict. Implemented in
  /// core/pipeline.cc.
  Status ApplyBatch(const UpdateBatch& batch);

  /// Memoized XPath evaluations shared by batched updates.
  const PathEvalCache& eval_cache() const { return eval_cache_; }
  void ClearEvalCache() { eval_cache_.Clear(); }

  /// Propagates a *relational* group update into the maintained view —
  /// the incremental-publishing direction ([8] in the paper; Fig.3's
  /// maintenance of V after ∆R). Each base insertion contributes exactly
  /// the delta-join rows that use it (new edges and, transitively, new
  /// subtrees); each deletion removes the witness rows that used the
  /// tuple, with unreferenced edges and nodes garbage-collected. Rejected
  /// (with full rollback of nothing applied) if the update would make the
  /// view cyclic; ops are applied one at a time, failing fast otherwise.
  Status ApplyRelationalUpdate(const RelationalUpdate& dr);

  /// Read-only XPath query over the view. Unsynchronized: sees the live
  /// state and must not run concurrently with writers — concurrent
  /// readers use AcquireSnapshot instead.
  Result<EvalResult> Query(const Path& p) const;
  Result<EvalResult> Query(const std::string& xpath) const;

  /// MVCC reads. Pins the current read epoch and returns a handle whose
  /// Eval sees exactly that version, from any thread, with no writer
  /// blocking: the handle owns an immutable shared copy of the epoch's
  /// state, so writers never wait on readers and readers never wait on
  /// writers (acquisition itself briefly serializes with commits on
  /// `commit_mu_`). The copy is amortized — one per write→read
  /// transition, reused by every snapshot of the same epoch — and its
  /// eval memo is carried across epochs by ∆V-journal patching. Writers
  /// retire an epoch's journal window only once no snapshot pins it
  /// (EpochRegistry → DagJournal retain floor).
  Snapshot AcquireSnapshot();

  /// The published read epoch: dag().version() as of the last committed
  /// write. Monotone except across Initialize() resyncs, which restart
  /// the version counter (and drop the published snapshot state).
  uint64_t read_epoch() const {
    return read_epoch_.load(std::memory_order_acquire);
  }

  /// Live pinned-snapshot count (test/diagnostic surface).
  const EpochRegistry& epoch_registry() const { return *epochs_; }

  const Database& database() const { return db_; }
  const DagView& dag() const { return dag_; }
  const ViewStore& store() const { return store_; }
  const TopoOrder& topo() const { return engine_.topo(); }
  const Reachability& reachability() const { return engine_.reach(); }
  /// The maintenance engine owning M and L (strategy selection, journal
  /// cursor).
  const MaintenanceEngine& maintenance_engine() const { return engine_; }
  const Atg& atg() const { return atg_; }

  /// Statistics of the most recent (accepted or rejected) update.
  const UpdateStats& last_stats() const { return stats_; }

  /// Republishes σ(I) from scratch — the oracle used by tests to check
  /// that incremental maintenance matches recomputation.
  Result<DagView> Republish() const;

  /// Deterministic serialization of the complete system state: base
  /// tables and view-store tables (rows canonically sorted — physical
  /// slot order is not restorable across a delete/re-insert rollback),
  /// the DAG per node id (liveness, label, exact child order and
  /// parent-vector layout), root, version, L, M (sorted pairs), the
  /// maintenance cursor, the ∆V journal tail, and the eval-cache
  /// fingerprint. The fault-injection fuzz compares this after an
  /// injected fault against the pre-op state, and between a retry and a
  /// never-faulted run. `strict` = false relaxes the two layout details
  /// that legitimately differ across an absorbed (degraded-but-
  /// successful) fault, where garbage collection completes in a
  /// different order: parent vectors compare as sorted sets (swap-erase
  /// layout is order-dependent) and the journal tail is dropped. Child
  /// order — document order — stays exact in both modes.
  std::string DebugFingerprint(bool strict = true) const;

 private:
  UpdateSystem(Atg atg, Database db, Options options)
      : atg_(std::move(atg)), db_(std::move(db)), options_(options) {}

  Status Initialize();

  /// Everything a failed write needs to restore the pre-op state
  /// exactly. Filled incrementally as the op applies; consumed by
  /// RollbackWrite. The DAG side is not tracked here — RollbackWrite
  /// rewinds it structurally through the ∆V journal
  /// (DagView::RewindTo), which also restores the node-id allocator,
  /// the version counter, and the journal tail.
  struct WriteUndo {
    uint64_t snapshot_version = 0;  ///< dag_.version() before the op
    Deadline deadline;              ///< per-op budget (infinite when unset)
    std::vector<TableOp> undo;      ///< applied ∆R, for Rollback()
    std::vector<ViewRowOp> removed_rows;  ///< witness rows dropped (4a)
    std::vector<Publisher::SubtreeResult> published;  ///< subtrees (4b)
    std::vector<ViewRowOp> added_rows;  ///< witness rows materialized (4b)
    /// Rows reclaimed after GC (phase 5): edge-view witness rows and
    /// (gen-table type, node id, attr) gen rows.
    std::vector<ViewRowOp> reclaimed_edge_rows;
    std::vector<std::tuple<std::string, int64_t, Tuple>> reclaimed_gen_rows;
    /// True once the maintenance engine may have touched M/L or its
    /// cursor; rollback then rebuilds them for the rewound DAG.
    bool maintenance_started = false;
  };

  /// Applies ∆R recording the ops that actually changed the database, so
  /// a later rejection can roll back precisely.
  Status ApplyDeltaRTracked(const RelationalUpdate& dr,
                            std::vector<TableOp>* undo);
  void Rollback(const std::vector<TableOp>& undo);

  /// Restores the pre-op state after a failed write: store rows first
  /// (newest phase first — reclaim, materialized rows, published
  /// subtrees, dropped rows — while tombstoned node labels are still
  /// readable), then the base ∆R, then the DAG via RewindTo, then M/L
  /// if maintenance had started. Falls back to a full resync
  /// (Initialize) when the journal window needed for the rewind was
  /// evicted; returns that resync's status (OK on the normal path).
  Status RollbackWrite(const WriteUndo& ctx);

  /// The batch pipeline body (core/pipeline.cc). ApplyBatch wraps it
  /// with the eval-cache scope and RollbackWrite.
  Status ApplyBatchImpl(const UpdateBatch& batch, WriteUndo* ctx);

  /// Per-op pipeline bodies: fill `ctx` as they mutate, return on the
  /// first failure, and leave the cleanup entirely to RollbackWrite in
  /// the ApplyInsert/ApplyDelete wrappers.
  Status ApplyInsertImpl(const std::string& elem_type, const Tuple& attr,
                         const Path& p, WriteUndo* ctx);
  Status ApplyDeleteImpl(const Path& p, WriteUndo* ctx);

  /// Undoes one subtree publication: removes its new edges, the witness
  /// rows materialized under its new nodes, their gen rows, and finally
  /// the nodes themselves.
  void RollbackSubtree(const Publisher::SubtreeResult& st);

  /// Store-only half of RollbackSubtree: removes the witness rows and
  /// gen rows of a publication but leaves the DAG alone — used by
  /// RollbackWrite, where DagView::RewindTo undoes the structure.
  void UnpublishSubtreeRows(const Publisher::SubtreeResult& st);

  /// Reclaims the relational coding of garbage-collected parts: witness
  /// rows of orphan edges, then gen rows of removed nodes (Fig.8's ∆'V).
  /// Records every removed row in `ctx` (when non-null) so a fault mid-
  /// reclaim can restore them.
  Status ReclaimCollected(const MaintenanceDelta& delta, WriteUndo* ctx);

  /// ApplyRelationalUpdate's body; the public wrapper adds the writer
  /// lock and epoch publication.
  Status ApplyRelationalUpdateImpl(const RelationalUpdate& dr);

  /// Folds the finished op's outcome and Fig.11 phase breakdown from
  /// `stats_` into the cumulative registry view (`xvu.op.<kind>.*`).
  /// `kind` is "insert", "delete", or "batch".
  void RecordOpMetrics(const char* kind, const Status& st);

  /// Propagates one already-applied base insertion / deletion into the
  /// view (core/propagate.cc).
  Status PropagateBaseInsert(const std::string& table, const Tuple& row);
  Status PropagateBaseDelete(const std::string& table, const Tuple& row);

  /// Publishes dag_.version() as the read epoch and refreshes the ∆V
  /// journal's retain floor from the oldest pinned epoch (and the cached
  /// published state, whose window the next carry-forward needs). Called
  /// at the end of every write path — success or rollback — and on
  /// snapshot-state rebuilds; commit_mu_ must be held.
  void PublishEpoch();

  /// The pool backing ApplyBatch's parallel phases; null when
  /// options_.worker_threads <= 1 (fully serial).
  ThreadPool* pool() { return pool_.get(); }

  Atg atg_;
  Database db_;
  Options options_;
  ViewStore store_;
  DagView dag_;
  MaintenanceEngine engine_;
  UpdateStats stats_;
  PathEvalCache eval_cache_;
  std::unique_ptr<ThreadPool> pool_;

  /// Serializes writers with each other and with snapshot acquisition.
  /// Snapshot *reads* never take it: a pinned handle owns immutable
  /// state, so readers proceed while a writer holds this for a whole
  /// batch. Held across every Apply* entry point.
  std::mutex commit_mu_;
  std::atomic<uint64_t> read_epoch_{0};
  /// Shared with every issued Snapshot, so handles may outlive the
  /// system and the writer can see the oldest pinned epoch.
  std::shared_ptr<EpochRegistry> epochs_ = std::make_shared<EpochRegistry>();
  /// Immutable state of the current read epoch; built lazily on the
  /// first AcquireSnapshot after a write and reused until the epoch
  /// moves. Reset by Initialize() — a resync restarts the version
  /// counter, and a stale state must not alias a new epoch number.
  std::shared_ptr<const SnapshotState> published_;
};

}  // namespace xvu

#endif  // XVU_CORE_SYSTEM_H_
