#include "src/core/evaluator.h"

#include <unordered_set>

namespace xvu {

std::vector<uint8_t> XPathEvaluator::EvalFilter(const FilterExpr& q) const {
  size_t cap = dag_->capacity();
  std::vector<uint8_t> val(cap, 0);
  switch (q.kind()) {
    case FilterExpr::Kind::kLabelEq: {
      for (NodeId v : order_->order()) {
        val[v] = dag_->node(v).type == q.label() ? 1 : 0;
      }
      return val;
    }
    case FilterExpr::Kind::kAnd: {
      std::vector<uint8_t> a = EvalFilter(*q.lhs());
      std::vector<uint8_t> b = EvalFilter(*q.rhs());
      for (size_t i = 0; i < cap; ++i) val[i] = a[i] && b[i];
      return val;
    }
    case FilterExpr::Kind::kOr: {
      std::vector<uint8_t> a = EvalFilter(*q.lhs());
      std::vector<uint8_t> b = EvalFilter(*q.rhs());
      for (size_t i = 0; i < cap; ++i) val[i] = a[i] || b[i];
      return val;
    }
    case FilterExpr::Kind::kNot: {
      std::vector<uint8_t> a = EvalFilter(*q.lhs());
      for (NodeId v : order_->order()) val[v] = !a[v];
      return val;
    }
    case FilterExpr::Kind::kPath:
      return EvalPathExists(Normalize(q.path()), nullptr);
    case FilterExpr::Kind::kPathEq: {
      const std::string& s = q.value();
      return EvalPathExists(Normalize(q.path()), &s);
    }
  }
  return val;
}

std::vector<uint8_t> XPathEvaluator::EvalPathExists(
    const NormalPath& np, const std::string* text_eq) const {
  size_t cap = dag_->capacity();
  size_t n = np.steps.size();
  // exist[i][v]: the suffix starting at step i matches from v.
  // Computed for i = n down to 0; the base case encodes the optional
  // string-value comparison.
  std::vector<uint8_t> next(cap, 0);
  for (NodeId v : order_->order()) {
    next[v] = text_eq == nullptr || dag_->TextOf(v) == *text_eq ? 1 : 0;
  }
  for (size_t i = n; i > 0; --i) {
    const NormalStep& s = np.steps[i - 1];
    std::vector<uint8_t> cur(cap, 0);
    switch (s.kind) {
      case NormalStep::Kind::kFilter: {
        std::vector<uint8_t> fv = EvalFilter(*s.filter);
        for (NodeId v : order_->order()) cur[v] = fv[v] && next[v];
        break;
      }
      case NormalStep::Kind::kLabel: {
        for (NodeId v : order_->order()) {
          for (NodeId c : dag_->children(v)) {
            if (next[c] && dag_->node(c).type == s.label) {
              cur[v] = 1;
              break;
            }
          }
        }
        break;
      }
      case NormalStep::Kind::kWildcard: {
        for (NodeId v : order_->order()) {
          for (NodeId c : dag_->children(v)) {
            if (next[c]) {
              cur[v] = 1;
              break;
            }
          }
        }
        break;
      }
      case NormalStep::Kind::kDescOrSelf: {
        // desc(q, v) = next(v) ∨ ∃ child c: desc(q, c) — the dynamic
        // program of Section 3.2, evaluated in topological order so every
        // child is final before its parents are visited.
        for (NodeId v : order_->order()) {
          if (next[v]) {
            cur[v] = 1;
            continue;
          }
          for (NodeId c : dag_->children(v)) {
            if (cur[c]) {
              cur[v] = 1;
              break;
            }
          }
        }
        break;
      }
    }
    next = std::move(cur);
  }
  return next;
}

std::vector<DenseNodeSet> XPathEvaluator::ForwardPass(
    const NormalPath& np, bool full_trace) const {
  size_t cap = dag_->capacity();
  size_t n = np.steps.size();
  // reached[i] = node set after step i (reached[0] = {root}). For a full
  // trace all n+1 sets are materialized even when the frontier dies out
  // early — the trace is replayed by the delta-patcher, which may revive
  // a dead frontier when new structure arrives.
  std::vector<DenseNodeSet> reached;
  reached.reserve(n + 1);
  reached.emplace_back(cap);
  if (dag_->root() != kInvalidNode) reached[0].Add(dag_->root());
  for (size_t i = 0; i < n; ++i) {
    const NormalStep& s = np.steps[i];
    const DenseNodeSet& cur = reached[i];
    DenseNodeSet next(cap);
    switch (s.kind) {
      case NormalStep::Kind::kFilter: {
        if (!cur.items.empty()) {
          std::vector<uint8_t> fv = EvalFilter(*s.filter);
          for (NodeId v : cur.items) {
            if (fv[v]) next.Add(v);
          }
        }
        break;
      }
      case NormalStep::Kind::kLabel:
      case NormalStep::Kind::kWildcard:
        for (NodeId v : cur.items) {
          for (NodeId c : dag_->children(v)) {
            if (s.kind == NormalStep::Kind::kLabel &&
                dag_->node(c).type != s.label) {
              continue;
            }
            next.Add(c);
          }
        }
        break;
      case NormalStep::Kind::kDescOrSelf:
        for (NodeId v : cur.items) {
          next.Add(v);
          for (NodeId d : reach_->Descendants(v)) next.Add(d);
        }
        break;
    }
    reached.push_back(std::move(next));
    if (!full_trace && reached.back().items.empty()) {
      break;  // r[[p]] = ∅ and no trace wanted: skip the dead suffix
    }
  }
  return reached;
}

Result<EvalResult> XPathEvaluator::Evaluate(const Path& p) const {
  NormalPath np = Normalize(p);
  std::vector<DenseNodeSet> reached = ForwardPass(np, /*full_trace=*/false);
  return FinishFromTrace(np, reached);
}

Result<CachedEval> XPathEvaluator::EvaluateTraced(const Path& p) const {
  CachedEval out;
  out.np = Normalize(p);
  out.reached = ForwardPass(out.np, /*full_trace=*/true);
  out.result = FinishFromTrace(out.np, out.reached);
  return out;
}

EvalResult XPathEvaluator::FinishFromTrace(
    const NormalPath& np, const std::vector<DenseNodeSet>& reached) const {
  size_t cap = dag_->capacity();
  size_t n = np.steps.size();
  EvalResult out;
  if (reached.size() <= n || reached[n].items.empty()) {
    return out;  // r[[p]] = ∅: no selection, no side effects
  }

  // Backward pruning: sel[i] ⊆ reached[i] keeps only nodes that lie on a
  // derivation of some finally selected node. Computing side effects on
  // the pruned sets avoids false positives from branches a later filter
  // discards.
  std::vector<DenseNodeSet> sel;
  sel.reserve(n + 1);
  for (size_t i = 0; i <= n; ++i) sel.emplace_back(cap);
  for (NodeId v : reached[n].items) sel[n].Add(v);
  for (size_t i = n; i > 0; --i) {
    const NormalStep& s = np.steps[i - 1];
    switch (s.kind) {
      case NormalStep::Kind::kFilter:
        for (NodeId v : sel[i].items) sel[i - 1].Add(v);
        break;
      case NormalStep::Kind::kLabel:
      case NormalStep::Kind::kWildcard:
        for (NodeId v : sel[i].items) {
          for (NodeId u : dag_->parents(v)) {
            if (reached[i - 1].Contains(u)) sel[i - 1].Add(u);
          }
        }
        break;
      case NormalStep::Kind::kDescOrSelf:
        for (NodeId v : sel[i].items) {
          if (reached[i - 1].Contains(v)) sel[i - 1].Add(v);
          for (NodeId a : reach_->Ancestors(v)) {
            if (reached[i - 1].Contains(a)) sel[i - 1].Add(a);
          }
        }
        break;
    }
  }

  // Side effects: an edge into an on-path node that no selected
  // derivation uses witnesses a tree occurrence of the modified subtree
  // that p does not select (Section 3.2); its source goes into S.
  DenseNodeSet s_set(cap);
  for (size_t i = 1; i <= n; ++i) {
    const NormalStep& s = np.steps[i - 1];
    switch (s.kind) {
      case NormalStep::Kind::kFilter:
        break;  // no movement, no new incoming edges
      case NormalStep::Kind::kLabel:
      case NormalStep::Kind::kWildcard:
        for (NodeId v : sel[i].items) {
          for (NodeId u : dag_->parents(v)) {
            if (!sel[i - 1].Contains(u)) s_set.Add(u);
          }
        }
        break;
      case NormalStep::Kind::kDescOrSelf: {
        // Cone = desc-or-self(sel[i-1]); every edge inside the cone is a
        // valid derivation (// accepts any descent). Nodes strictly below
        // the cone top with a parent outside the cone witness unselected
        // occurrences. The cone tops' own incoming edges belong to the
        // previous step.
        DenseNodeSet cone(cap);
        for (NodeId u : sel[i - 1].items) {
          cone.Add(u);
          for (NodeId d : reach_->Descendants(u)) cone.Add(d);
        }
        // anc-or-self(sel[i]): the nodes actually on a descent path.
        DenseNodeSet between(cap);
        for (NodeId v : sel[i].items) {
          between.Add(v);
          for (NodeId a : reach_->Ancestors(v)) between.Add(a);
        }
        for (NodeId w : cone.items) {
          if (sel[i - 1].Contains(w)) continue;  // cone top: previous step
          if (!between.Contains(w)) continue;
          for (NodeId u : dag_->parents(w)) {
            if (!cone.Contains(u)) s_set.Add(u);
          }
        }
        break;
      }
    }
  }
  out.side_effect_nodes = std::move(s_set.items);
  out.selected = sel[n].items;

  // Ep(r): the parents through which p reaches each selected node. With a
  // trailing child step these are the pruned derivation edges; after a
  // trailing // (or the empty path) every incoming edge reaches the node
  // (cf. Example 5's ∆V2 containing both takenBy parents).
  size_t last_move = n;
  while (last_move > 0 &&
         np.steps[last_move - 1].kind == NormalStep::Kind::kFilter) {
    --last_move;
  }
  if (last_move == 0 ||
      np.steps[last_move - 1].kind == NormalStep::Kind::kDescOrSelf) {
    for (NodeId v : sel[n].items) {
      for (NodeId u : dag_->parents(v)) out.parent_edges.emplace_back(u, v);
    }
  } else {
    for (NodeId v : sel[n].items) {
      for (NodeId u : dag_->parents(v)) {
        if (sel[last_move - 1].Contains(u)) {
          out.parent_edges.emplace_back(u, v);
        }
      }
    }
  }
  return out;
}

}  // namespace xvu
