#include "src/core/delta_eval.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/xpath/normal_form.h"

namespace xvu {

namespace {

bool FilterIsMonotone(const FilterExpr& q);

bool PathFiltersMonotone(const Path& p) {
  for (const PathStep& s : p.steps) {
    for (const FilterPtr& f : s.filters) {
      if (!FilterIsMonotone(*f)) return false;
    }
  }
  return true;
}

bool FilterIsMonotone(const FilterExpr& q) {
  switch (q.kind()) {
    case FilterExpr::Kind::kNot:
      return false;
    case FilterExpr::Kind::kAnd:
    case FilterExpr::Kind::kOr:
      return FilterIsMonotone(*q.lhs()) && FilterIsMonotone(*q.rhs());
    case FilterExpr::Kind::kLabelEq:
      return true;
    case FilterExpr::Kind::kPath:
    case FilterExpr::Kind::kPathEq:
      return PathFiltersMonotone(q.path());
  }
  return false;
}

/// Exact per-node filter evaluation against the current DAG — val(q, v)
/// restricted to the handful of nodes a patch touches, instead of the
/// evaluator's whole-view bitmap pass. Memoized per filter across the
/// nodes of one patch.
class NodeFilterEval {
 public:
  NodeFilterEval(const DagView& dag, const Reachability& reach)
      : dag_(dag), reach_(reach) {}

  bool Eval(const FilterExpr& q, NodeId v) {
    switch (q.kind()) {
      case FilterExpr::Kind::kLabelEq:
        return dag_.node(v).type == q.label();
      case FilterExpr::Kind::kAnd:
        return Eval(*q.lhs(), v) && Eval(*q.rhs(), v);
      case FilterExpr::Kind::kOr:
        return Eval(*q.lhs(), v) || Eval(*q.rhs(), v);
      case FilterExpr::Kind::kNot:
        return !Eval(*q.lhs(), v);
      case FilterExpr::Kind::kPath:
      case FilterExpr::Kind::kPathEq: {
        PerFilter& pf = Cached(q);
        const std::string* text =
            q.kind() == FilterExpr::Kind::kPathEq ? &q.value() : nullptr;
        return Match(&pf, 0, v, text);
      }
    }
    return false;
  }

 private:
  struct PerFilter {
    NormalPath np;
    /// (step, node) -> matched; keyed step * capacity + node.
    std::unordered_map<uint64_t, bool> memo;
  };

  PerFilter& Cached(const FilterExpr& q) {
    auto it = filters_.find(&q);
    if (it == filters_.end()) {
      it = filters_.emplace(&q, PerFilter{Normalize(q.path()), {}}).first;
    }
    return it->second;
  }

  /// exists-semantics of the suffix pf->np.steps[i..] from v, with the
  /// optional string-value comparison at the end — the per-node analogue
  /// of XPathEvaluator::EvalPathExists.
  bool Match(PerFilter* pf, size_t i, NodeId v, const std::string* text_eq) {
    if (i == pf->np.steps.size()) {
      return text_eq == nullptr || dag_.TextOf(v) == *text_eq;
    }
    uint64_t key = static_cast<uint64_t>(i) * dag_.capacity() + v;
    auto mit = pf->memo.find(key);
    if (mit != pf->memo.end()) return mit->second;
    const NormalStep& s = pf->np.steps[i];
    bool r = false;
    switch (s.kind) {
      case NormalStep::Kind::kFilter:
        r = Eval(*s.filter, v) && Match(pf, i + 1, v, text_eq);
        break;
      case NormalStep::Kind::kLabel:
        for (NodeId c : dag_.children(v)) {
          if (dag_.node(c).type == s.label && Match(pf, i + 1, c, text_eq)) {
            r = true;
            break;
          }
        }
        break;
      case NormalStep::Kind::kWildcard:
        for (NodeId c : dag_.children(v)) {
          if (Match(pf, i + 1, c, text_eq)) {
            r = true;
            break;
          }
        }
        break;
      case NormalStep::Kind::kDescOrSelf:
        if (Match(pf, i + 1, v, text_eq)) {
          r = true;
        } else {
          for (NodeId d : reach_.Descendants(v)) {
            if (Match(pf, i + 1, d, text_eq)) {
              r = true;
              break;
            }
          }
        }
        break;
    }
    pf->memo.emplace(key, r);
    return r;
  }

  const DagView& dag_;
  const Reachability& reach_;
  std::unordered_map<const FilterExpr*, PerFilter> filters_;
};

/// Exact general patcher for windows containing removals (and for
/// non-monotone paths, whose filters may flip in either direction even
/// under additions). Processes the trace level by level: a candidate set
/// bounds every node whose membership at that level can have changed,
/// and each candidate's membership is recomputed from the step's
/// definition against the current DAG, M, and the patched previous
/// level.
///
/// Candidate soundness rests on one decomposition argument: any
/// old-graph ancestor/descendant chain that no longer exists crosses at
/// least one changed edge, so it splits into current-graph segments
/// joined at changed-edge endpoints — closing over the *current* M from
/// those endpoints (plus the previous level's flips) covers every node
/// whose old-graph relationship to the change region is gone.
bool PatchEvalGeneral(const DagView& dag, const TopoOrder& topo,
                      const Reachability& reach,
                      const std::vector<DagDelta>& journal,
                      CachedEval* entry) {
  const size_t n = entry->np.steps.size();
  const size_t cap = dag.capacity();

  // Window summary: every endpoint touched by a mutation, the changed
  // (added or removed) edges, and the per-parent removed children.
  std::vector<NodeId> touched;
  std::vector<std::pair<NodeId, NodeId>> changed_edges;
  std::unordered_map<NodeId, std::vector<NodeId>> removed_children;
  std::vector<NodeId> changed_nodes;
  for (const DagDelta& d : journal) {
    switch (d.kind) {
      case DagDelta::Kind::kNodeAdded:
      case DagDelta::Kind::kNodeRemoved:
        touched.push_back(d.node);
        changed_nodes.push_back(d.node);
        break;
      case DagDelta::Kind::kEdgeAdded:
        touched.push_back(d.parent);
        touched.push_back(d.child);
        changed_edges.emplace_back(d.parent, d.child);
        break;
      case DagDelta::Kind::kEdgeRemoved:
        touched.push_back(d.parent);
        touched.push_back(d.child);
        changed_edges.emplace_back(d.parent, d.child);
        removed_children[d.parent].push_back(d.child);
        break;
      case DagDelta::Kind::kRootChanged:
        return false;  // caller filtered these; defensive
    }
  }

  for (DenseNodeSet& s : entry->reached) s.EnsureCapacity(cap);

  // The root is pinned at level 0; a window that killed it is a resync,
  // not a patch.
  if (dag.root() == kInvalidNode || !dag.alive(dag.root()) ||
      !entry->reached[0].Contains(dag.root())) {
    return false;
  }

  // Downward-filter values can only change on ancestors-or-self (in the
  // old or new graph — see the decomposition argument above) of a
  // touched node.
  bool has_filter = false;
  for (const NormalStep& s : entry->np.steps) {
    if (s.kind == NormalStep::Kind::kFilter) has_filter = true;
  }
  DenseNodeSet filter_affected(cap);
  if (has_filter) {
    for (NodeId t : touched) {
      filter_affected.Add(t);
      for (NodeId a : reach.Ancestors(t)) filter_affected.Add(a);
    }
  }

  NodeFilterEval filter_eval(dag, reach);
  DenseNodeSet dirty(cap);  // membership flips at the previous level
  for (size_t i = 0; i < n; ++i) {
    const NormalStep& s = entry->np.steps[i];
    DenseNodeSet cand(cap);
    switch (s.kind) {
      case NormalStep::Kind::kFilter:
        // No movement: flips come from upstream flips or filter-value
        // changes.
        for (NodeId v : dirty.items) cand.Add(v);
        for (NodeId v : filter_affected.items) cand.Add(v);
        break;
      case NormalStep::Kind::kLabel:
      case NormalStep::Kind::kWildcard:
        // A child's membership changes only if one of its (current or
        // removed) in-edges changed, or a parent's membership flipped.
        for (NodeId d : dirty.items) {
          for (NodeId c : dag.children(d)) cand.Add(c);
          auto it = removed_children.find(d);
          if (it != removed_children.end()) {
            for (NodeId c : it->second) cand.Add(c);
          }
        }
        for (const auto& [u, v] : changed_edges) {
          (void)u;
          cand.Add(v);
        }
        break;
      case NormalStep::Kind::kDescOrSelf: {
        // Seeds: upstream flips, changed-edge children, changed nodes.
        // Closing over the current M from the seeds covers old-graph
        // descendants too (every vanished chain crosses a changed edge
        // whose child endpoint is itself a seed).
        DenseNodeSet seeds(cap);
        for (NodeId v : dirty.items) seeds.Add(v);
        for (const auto& [u, v] : changed_edges) {
          (void)u;
          seeds.Add(v);
        }
        for (NodeId v : changed_nodes) seeds.Add(v);
        for (NodeId v : seeds.items) {
          cand.Add(v);
          for (NodeId d : reach.Descendants(v)) cand.Add(d);
        }
        break;
      }
    }

    DenseNodeSet next_dirty(cap);
    bool removed_any = false;
    for (NodeId v : cand.items) {
      const bool was = entry->reached[i + 1].Contains(v);
      bool now = false;
      if (dag.alive(v)) {
        switch (s.kind) {
          case NormalStep::Kind::kFilter:
            now = entry->reached[i].Contains(v) &&
                  filter_eval.Eval(*s.filter, v);
            break;
          case NormalStep::Kind::kLabel:
            if (dag.node(v).type == s.label) {
              for (NodeId p : dag.parents(v)) {
                if (entry->reached[i].Contains(p)) {
                  now = true;
                  break;
                }
              }
            }
            break;
          case NormalStep::Kind::kWildcard:
            for (NodeId p : dag.parents(v)) {
              if (entry->reached[i].Contains(p)) {
                now = true;
                break;
              }
            }
            break;
          case NormalStep::Kind::kDescOrSelf:
            now = entry->reached[i].Contains(v);
            if (!now) {
              for (NodeId a : reach.Ancestors(v)) {
                if (entry->reached[i].Contains(a)) {
                  now = true;
                  break;
                }
              }
            }
            break;
        }
      }
      if (now == was) continue;
      if (now) {
        entry->reached[i + 1].Add(v);
      } else {
        entry->reached[i + 1].RemoveDeferred(v);
        removed_any = true;
      }
      next_dirty.Add(v);
    }
    if (removed_any) entry->reached[i + 1].CompactItems();
    dirty = std::move(next_dirty);
  }

  XPathEvaluator ev(&dag, &topo, &reach);
  entry->result = ev.FinishFromTrace(entry->np, entry->reached);
  return true;
}

}  // namespace

bool PathIsMonotone(const NormalPath& np) {
  for (const NormalStep& s : np.steps) {
    if (s.kind == NormalStep::Kind::kFilter && !FilterIsMonotone(*s.filter)) {
      return false;
    }
  }
  return true;
}

bool TryPatchEval(const DagView& dag, const TopoOrder& topo,
                  const Reachability& reach,
                  const std::vector<DagDelta>& journal, CachedEval* entry) {
  // Past this window size a fresh evaluation is competitive with the
  // patch's per-entry work; don't bother.
  constexpr size_t kMaxPatchWindow = 4096;
  const size_t n = entry->np.steps.size();
  if (journal.empty() || journal.size() > kMaxPatchWindow) return false;
  if (entry->reached.size() != n + 1) return false;  // entry has no trace
  bool additions_only = true;
  for (const DagDelta& d : journal) {
    if (d.kind == DagDelta::Kind::kRootChanged) {
      return false;  // a root move is a republish, not a patch
    }
    if (d.kind != DagDelta::Kind::kNodeAdded &&
        d.kind != DagDelta::Kind::kEdgeAdded) {
      additions_only = false;
    }
  }
  if (!additions_only || !PathIsMonotone(entry->np)) {
    // Removal windows and non-monotone paths take the exact general
    // patcher: the monotone worklist below only ever *adds* members.
    return PatchEvalGeneral(dag, topo, reach, journal, entry);
  }

  std::vector<std::pair<NodeId, NodeId>> added_edges;
  for (const DagDelta& d : journal) {
    if (d.kind == DagDelta::Kind::kEdgeAdded) {
      added_edges.emplace_back(d.parent, d.child);
    }
    // New nodes need no separate seeding: an isolated node is unreachable
    // by every step (reached[0] is pinned to the root), and a connected
    // one is covered by its edges below.
  }

  for (DenseNodeSet& s : entry->reached) s.EnsureCapacity(dag.capacity());

  NodeFilterEval filter_eval(dag, reach);
  std::deque<std::pair<size_t, NodeId>> work;
  auto add = [&](size_t i, NodeId v) {
    if (!entry->reached[i].Contains(v)) {
      entry->reached[i].Add(v);
      work.emplace_back(i, v);
    }
  };

  // (1) Filter flips on existing frontier members. Downward filters read
  // only a node's cone, so only ancestors-or-self of an added edge's
  // parent endpoint can have changed value — and with additions only,
  // strictly false → true.
  bool has_filter_step = false;
  for (const NormalStep& s : entry->np.steps) {
    if (s.kind == NormalStep::Kind::kFilter) has_filter_step = true;
  }
  if (has_filter_step) {
    std::unordered_set<NodeId> candidates;
    for (const auto& [u, v] : added_edges) {
      (void)v;
      candidates.insert(u);
      const auto& au = reach.Ancestors(u);
      candidates.insert(au.begin(), au.end());
    }
    for (size_t i = 0; i < n; ++i) {
      const NormalStep& s = entry->np.steps[i];
      if (s.kind != NormalStep::Kind::kFilter) continue;
      for (NodeId x : candidates) {
        if (entry->reached[i].Contains(x) &&
            !entry->reached[i + 1].Contains(x) &&
            filter_eval.Eval(*s.filter, x)) {
          add(i + 1, x);
        }
      }
    }
  }

  // (2) Transitions the added edges enable from already-present frontier
  // members. (Edges from members that join *later* are replayed by the
  // worklist, which walks current-DAG children.)
  for (const auto& [u, v] : added_edges) {
    for (size_t i = 0; i < n; ++i) {
      const NormalStep& s = entry->np.steps[i];
      switch (s.kind) {
        case NormalStep::Kind::kFilter:
          break;  // no movement; handled in (1)
        case NormalStep::Kind::kLabel:
          if (entry->reached[i].Contains(u) && dag.node(v).type == s.label) {
            add(i + 1, v);
          }
          break;
        case NormalStep::Kind::kWildcard:
          if (entry->reached[i].Contains(u)) add(i + 1, v);
          break;
        case NormalStep::Kind::kDescOrSelf:
          // The step's output is closed under descendants: the new edge
          // extends the cone below u. (v's own cone closes via the
          // worklist's defining-step rule.)
          if (entry->reached[i + 1].Contains(u)) add(i + 1, v);
          break;
      }
    }
  }

  // (3) Worklist closure: every node that joins a frontier replays its
  // outgoing transitions against the current DAG and maintained M.
  while (!work.empty()) {
    auto [i, x] = work.front();
    work.pop_front();
    if (i > 0 &&
        entry->np.steps[i - 1].kind == NormalStep::Kind::kDescOrSelf) {
      // Defining step is //: close x's descendant cone into the frontier.
      for (NodeId d : reach.Descendants(x)) add(i, d);
    }
    if (i == n) continue;
    const NormalStep& s = entry->np.steps[i];
    switch (s.kind) {
      case NormalStep::Kind::kFilter:
        if (filter_eval.Eval(*s.filter, x)) add(i + 1, x);
        break;
      case NormalStep::Kind::kLabel:
        for (NodeId c : dag.children(x)) {
          if (dag.node(c).type == s.label) add(i + 1, c);
        }
        break;
      case NormalStep::Kind::kWildcard:
        for (NodeId c : dag.children(x)) add(i + 1, c);
        break;
      case NormalStep::Kind::kDescOrSelf:
        add(i + 1, x);
        for (NodeId d : reach.Descendants(x)) add(i + 1, d);
        break;
    }
  }

  // (4) Re-derive the full result (pruning, side effects, Ep(r)) from the
  // patched trace.
  XPathEvaluator ev(&dag, &topo, &reach);
  entry->result = ev.FinishFromTrace(entry->np, entry->reached);
  return true;
}

}  // namespace xvu
