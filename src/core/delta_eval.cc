#include "src/core/delta_eval.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/xpath/normal_form.h"

namespace xvu {

namespace {

bool FilterIsMonotone(const FilterExpr& q);

bool PathFiltersMonotone(const Path& p) {
  for (const PathStep& s : p.steps) {
    for (const FilterPtr& f : s.filters) {
      if (!FilterIsMonotone(*f)) return false;
    }
  }
  return true;
}

bool FilterIsMonotone(const FilterExpr& q) {
  switch (q.kind()) {
    case FilterExpr::Kind::kNot:
      return false;
    case FilterExpr::Kind::kAnd:
    case FilterExpr::Kind::kOr:
      return FilterIsMonotone(*q.lhs()) && FilterIsMonotone(*q.rhs());
    case FilterExpr::Kind::kLabelEq:
      return true;
    case FilterExpr::Kind::kPath:
    case FilterExpr::Kind::kPathEq:
      return PathFiltersMonotone(q.path());
  }
  return false;
}

/// Exact per-node filter evaluation against the current DAG — val(q, v)
/// restricted to the handful of nodes a patch touches, instead of the
/// evaluator's whole-view bitmap pass. Memoized per filter across the
/// nodes of one patch.
class NodeFilterEval {
 public:
  NodeFilterEval(const DagView& dag, const Reachability& reach)
      : dag_(dag), reach_(reach) {}

  bool Eval(const FilterExpr& q, NodeId v) {
    switch (q.kind()) {
      case FilterExpr::Kind::kLabelEq:
        return dag_.node(v).type == q.label();
      case FilterExpr::Kind::kAnd:
        return Eval(*q.lhs(), v) && Eval(*q.rhs(), v);
      case FilterExpr::Kind::kOr:
        return Eval(*q.lhs(), v) || Eval(*q.rhs(), v);
      case FilterExpr::Kind::kNot:
        return !Eval(*q.lhs(), v);
      case FilterExpr::Kind::kPath:
      case FilterExpr::Kind::kPathEq: {
        PerFilter& pf = Cached(q);
        const std::string* text =
            q.kind() == FilterExpr::Kind::kPathEq ? &q.value() : nullptr;
        return Match(&pf, 0, v, text);
      }
    }
    return false;
  }

 private:
  struct PerFilter {
    NormalPath np;
    /// (step, node) -> matched; keyed step * capacity + node.
    std::unordered_map<uint64_t, bool> memo;
  };

  PerFilter& Cached(const FilterExpr& q) {
    auto it = filters_.find(&q);
    if (it == filters_.end()) {
      it = filters_.emplace(&q, PerFilter{Normalize(q.path()), {}}).first;
    }
    return it->second;
  }

  /// exists-semantics of the suffix pf->np.steps[i..] from v, with the
  /// optional string-value comparison at the end — the per-node analogue
  /// of XPathEvaluator::EvalPathExists.
  bool Match(PerFilter* pf, size_t i, NodeId v, const std::string* text_eq) {
    if (i == pf->np.steps.size()) {
      return text_eq == nullptr || dag_.TextOf(v) == *text_eq;
    }
    uint64_t key = static_cast<uint64_t>(i) * dag_.capacity() + v;
    auto mit = pf->memo.find(key);
    if (mit != pf->memo.end()) return mit->second;
    const NormalStep& s = pf->np.steps[i];
    bool r = false;
    switch (s.kind) {
      case NormalStep::Kind::kFilter:
        r = Eval(*s.filter, v) && Match(pf, i + 1, v, text_eq);
        break;
      case NormalStep::Kind::kLabel:
        for (NodeId c : dag_.children(v)) {
          if (dag_.node(c).type == s.label && Match(pf, i + 1, c, text_eq)) {
            r = true;
            break;
          }
        }
        break;
      case NormalStep::Kind::kWildcard:
        for (NodeId c : dag_.children(v)) {
          if (Match(pf, i + 1, c, text_eq)) {
            r = true;
            break;
          }
        }
        break;
      case NormalStep::Kind::kDescOrSelf:
        if (Match(pf, i + 1, v, text_eq)) {
          r = true;
        } else {
          for (NodeId d : reach_.Descendants(v)) {
            if (Match(pf, i + 1, d, text_eq)) {
              r = true;
              break;
            }
          }
        }
        break;
    }
    pf->memo.emplace(key, r);
    return r;
  }

  const DagView& dag_;
  const Reachability& reach_;
  std::unordered_map<const FilterExpr*, PerFilter> filters_;
};

}  // namespace

bool PathIsMonotone(const NormalPath& np) {
  for (const NormalStep& s : np.steps) {
    if (s.kind == NormalStep::Kind::kFilter && !FilterIsMonotone(*s.filter)) {
      return false;
    }
  }
  return true;
}

bool TryPatchEval(const DagView& dag, const TopoOrder& topo,
                  const Reachability& reach,
                  const std::vector<DagDelta>& journal, CachedEval* entry) {
  // Past this window size a fresh evaluation is competitive with the
  // patch's per-entry work; don't bother.
  constexpr size_t kMaxPatchWindow = 4096;
  const size_t n = entry->np.steps.size();
  if (journal.empty() || journal.size() > kMaxPatchWindow) return false;
  if (entry->reached.size() != n + 1) return false;  // entry has no trace
  for (const DagDelta& d : journal) {
    if (d.kind != DagDelta::Kind::kNodeAdded &&
        d.kind != DagDelta::Kind::kEdgeAdded) {
      return false;  // removals / root moves are not monotone
    }
  }
  if (!PathIsMonotone(entry->np)) return false;

  std::vector<std::pair<NodeId, NodeId>> added_edges;
  for (const DagDelta& d : journal) {
    if (d.kind == DagDelta::Kind::kEdgeAdded) {
      added_edges.emplace_back(d.parent, d.child);
    }
    // New nodes need no separate seeding: an isolated node is unreachable
    // by every step (reached[0] is pinned to the root), and a connected
    // one is covered by its edges below.
  }

  for (DenseNodeSet& s : entry->reached) s.EnsureCapacity(dag.capacity());

  NodeFilterEval filter_eval(dag, reach);
  std::deque<std::pair<size_t, NodeId>> work;
  auto add = [&](size_t i, NodeId v) {
    if (!entry->reached[i].Contains(v)) {
      entry->reached[i].Add(v);
      work.emplace_back(i, v);
    }
  };

  // (1) Filter flips on existing frontier members. Downward filters read
  // only a node's cone, so only ancestors-or-self of an added edge's
  // parent endpoint can have changed value — and with additions only,
  // strictly false → true.
  bool has_filter_step = false;
  for (const NormalStep& s : entry->np.steps) {
    if (s.kind == NormalStep::Kind::kFilter) has_filter_step = true;
  }
  if (has_filter_step) {
    std::unordered_set<NodeId> candidates;
    for (const auto& [u, v] : added_edges) {
      (void)v;
      candidates.insert(u);
      const auto& au = reach.Ancestors(u);
      candidates.insert(au.begin(), au.end());
    }
    for (size_t i = 0; i < n; ++i) {
      const NormalStep& s = entry->np.steps[i];
      if (s.kind != NormalStep::Kind::kFilter) continue;
      for (NodeId x : candidates) {
        if (entry->reached[i].Contains(x) &&
            !entry->reached[i + 1].Contains(x) &&
            filter_eval.Eval(*s.filter, x)) {
          add(i + 1, x);
        }
      }
    }
  }

  // (2) Transitions the added edges enable from already-present frontier
  // members. (Edges from members that join *later* are replayed by the
  // worklist, which walks current-DAG children.)
  for (const auto& [u, v] : added_edges) {
    for (size_t i = 0; i < n; ++i) {
      const NormalStep& s = entry->np.steps[i];
      switch (s.kind) {
        case NormalStep::Kind::kFilter:
          break;  // no movement; handled in (1)
        case NormalStep::Kind::kLabel:
          if (entry->reached[i].Contains(u) && dag.node(v).type == s.label) {
            add(i + 1, v);
          }
          break;
        case NormalStep::Kind::kWildcard:
          if (entry->reached[i].Contains(u)) add(i + 1, v);
          break;
        case NormalStep::Kind::kDescOrSelf:
          // The step's output is closed under descendants: the new edge
          // extends the cone below u. (v's own cone closes via the
          // worklist's defining-step rule.)
          if (entry->reached[i + 1].Contains(u)) add(i + 1, v);
          break;
      }
    }
  }

  // (3) Worklist closure: every node that joins a frontier replays its
  // outgoing transitions against the current DAG and maintained M.
  while (!work.empty()) {
    auto [i, x] = work.front();
    work.pop_front();
    if (i > 0 &&
        entry->np.steps[i - 1].kind == NormalStep::Kind::kDescOrSelf) {
      // Defining step is //: close x's descendant cone into the frontier.
      for (NodeId d : reach.Descendants(x)) add(i, d);
    }
    if (i == n) continue;
    const NormalStep& s = entry->np.steps[i];
    switch (s.kind) {
      case NormalStep::Kind::kFilter:
        if (filter_eval.Eval(*s.filter, x)) add(i + 1, x);
        break;
      case NormalStep::Kind::kLabel:
        for (NodeId c : dag.children(x)) {
          if (dag.node(c).type == s.label) add(i + 1, c);
        }
        break;
      case NormalStep::Kind::kWildcard:
        for (NodeId c : dag.children(x)) add(i + 1, c);
        break;
      case NormalStep::Kind::kDescOrSelf:
        add(i + 1, x);
        for (NodeId d : reach.Descendants(x)) add(i + 1, d);
        break;
    }
  }

  // (4) Re-derive the full result (pruning, side effects, Ep(r)) from the
  // patched trace.
  XPathEvaluator ev(&dag, &topo, &reach);
  entry->result = ev.FinishFromTrace(entry->np, entry->reached);
  return true;
}

}  // namespace xvu
