#ifndef XVU_CORE_UPDATE_H_
#define XVU_CORE_UPDATE_H_

#include <string>

#include "src/atg/atg.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/xpath/ast.h"

namespace xvu {

/// An XML view update ∆X (Section 2.1):
///   insert (A, t) into p   |   delete p
/// where A is an element type, t an instantiation of its semantic
/// attribute $A, and p an XPath expression.
struct XmlUpdate {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kDelete;
  Path path;
  std::string elem_type;  ///< insert only: A
  Tuple attr;             ///< insert only: t

  std::string ToString() const;
};

/// Parses the textual update syntax:
///   insert TYPE(v1, v2, ...) into XPATH
///   delete XPATH
/// Values are typed against the ATG's attribute schema for TYPE; quoted
/// strings and barewords are both accepted.
Result<XmlUpdate> ParseUpdate(const std::string& stmt, const Atg& atg);

}  // namespace xvu

#endif  // XVU_CORE_UPDATE_H_
