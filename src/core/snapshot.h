#ifndef XVU_CORE_SNAPSHOT_H_
#define XVU_CORE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/evaluator.h"
#include "src/core/pipeline.h"
#include "src/dag/dag_view.h"
#include "src/dag/reachability.h"
#include "src/dag/topo_order.h"
#include "src/xpath/ast.h"

namespace xvu {

/// Immutable state of one published read epoch — everything a reader
/// needs to evaluate paths at that version without touching the live
/// system: the DAG, the maintained L and M, and a reader-shared memo of
/// path evaluations. Built once per epoch transition by
/// UpdateSystem::AcquireSnapshot and shared by every Snapshot pinning
/// the epoch; after publication only `cache` mutates, and PathEvalCache
/// serializes itself internally, so concurrent readers need no further
/// synchronization.
struct SnapshotState {
  uint64_t epoch = 0;
  DagView dag;
  TopoOrder topo;
  Reachability reach;
  /// Lazily filled per-epoch eval memo. Entries are always stamped at
  /// `epoch`; on an epoch transition the survivors are carried into the
  /// next state's cache by ∆V-journal patching (AdoptPatched).
  mutable PathEvalCache cache;
};

/// Pinned-epoch bookkeeping shared between the system and every live
/// Snapshot handle. The writer reads MinPinnedOr() when publishing a new
/// epoch to set the ∆V journal's retain floor — epochs are retired (their
/// journal window released) only once no reader pins them.
///
/// Held by shared_ptr on both sides so a Snapshot may outlive the
/// UpdateSystem that issued it.
class EpochRegistry {
 public:
  void Pin(uint64_t epoch);
  void Unpin(uint64_t epoch);
  /// Smallest pinned epoch, or `fallback` when nothing is pinned.
  uint64_t MinPinnedOr(uint64_t fallback) const;
  /// Number of live pins (distinct handles, not distinct epochs).
  size_t live() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, size_t> pins_;
};

/// A pinned read epoch. Move-only; pins its epoch in the registry for
/// its whole lifetime and evaluates XPath paths against the pinned
/// version — first from the epoch's shared eval memo, else by a fresh
/// traced evaluation of the immutable state. Never takes any
/// UpdateSystem lock: readers on their own threads proceed while writer
/// batches commit, and vice versa.
class Snapshot {
 public:
  Snapshot(std::shared_ptr<const SnapshotState> state,
           std::shared_ptr<EpochRegistry> registry);
  ~Snapshot();
  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  uint64_t epoch() const { return state_->epoch; }
  const DagView& dag() const { return state_->dag; }
  const TopoOrder& topo() const { return state_->topo; }
  const Reachability& reachability() const { return state_->reach; }
  /// The epoch's shared eval memo (hit/miss/carry-forward accounting).
  const PathEvalCache& eval_cache() const { return state_->cache; }

  /// r[[p]] at the pinned epoch. Safe to call from any number of threads
  /// on any number of handles of the same epoch concurrently.
  Result<EvalResult> Eval(const Path& p) const;
  Result<EvalResult> Eval(const std::string& xpath) const;

 private:
  std::shared_ptr<const SnapshotState> state_;
  std::shared_ptr<EpochRegistry> registry_;
};

}  // namespace xvu

#endif  // XVU_CORE_SNAPSHOT_H_
