#include "src/atg/publisher.h"

#include <deque>

namespace xvu {

namespace {

/// Kahn cycle check over the DAG (the published view must be acyclic:
/// a cycle means the XML view is an infinite tree).
bool IsAcyclicDag(const DagView& dag) {
  std::vector<NodeId> live = dag.LiveNodes();
  std::vector<size_t> indeg(dag.capacity(), 0);
  for (NodeId v : live) indeg[v] = dag.parents(v).size();
  std::deque<NodeId> q;
  for (NodeId v : live) {
    if (indeg[v] == 0) q.push_back(v);
  }
  size_t seen = 0;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop_front();
    ++seen;
    for (NodeId c : dag.children(u)) {
      if (--indeg[c] == 0) q.push_back(c);
    }
  }
  return seen == live.size();
}

}  // namespace

Status Publisher::RegisterViews(ViewStore* store) const {
  const Dtd& dtd = atg_->dtd();
  for (const std::string& type : dtd.Types()) {
    const std::vector<Column>* attrs = atg_->AttrSchema(type);
    std::vector<Column> fields = attrs == nullptr ? std::vector<Column>{}
                                                  : *attrs;
    XVU_RETURN_NOT_OK(store->RegisterGenTable(type, fields));
    const Production* prod = dtd.GetProduction(type);
    if (prod->kind != ContentKind::kStar) continue;
    const SpjQuery* rule = atg_->StarRule(type);
    if (rule == nullptr) {
      return Status::InvalidArgument("star production of " + type +
                                     " has no rule query");
    }
    const std::string& child = prod->children[0];
    const std::vector<Column>* child_attrs = atg_->AttrSchema(child);
    EdgeViewInfo info;
    info.name = ViewStore::EdgeViewName(type, child);
    info.parent_type = type;
    info.child_type = child;
    info.rule = *rule;
    info.attr_arity = child_attrs == nullptr ? 0 : child_attrs->size();
    XVU_ASSIGN_OR_RETURN(info.key_positions, rule->KeyOutputPositions(*db_));
    XVU_RETURN_NOT_OK(store->RegisterEdgeView(std::move(info)));
  }
  return Status::OK();
}

Result<NodeId> Publisher::GetOrCreate(Ctx* ctx, const std::string& type,
                                      const Tuple& attr, bool* created) {
  NodeId existing = ctx->dag->FindNode(type, attr);
  if (existing != kInvalidNode) {
    *created = false;
    return existing;
  }
  NodeId id = ctx->dag->GetOrAddNode(type, attr);
  *created = true;
  const Production* prod = atg_->dtd().GetProduction(type);
  if (prod != nullptr && prod->kind == ContentKind::kPcdata) {
    ctx->dag->MarkTextNode(id);
  }
  if (ctx->store != nullptr) {
    XVU_RETURN_NOT_OK(ctx->store->AddGenRow(type, id, attr));
  }
  if (ctx->delta != nullptr) ctx->delta->new_nodes.push_back(id);
  return id;
}

Status Publisher::LinkChild(Ctx* ctx, NodeId parent,
                            const std::string& child_type,
                            const Tuple& child_attr) {
  bool created = false;
  XVU_ASSIGN_OR_RETURN(NodeId child,
                       GetOrCreate(ctx, child_type, child_attr, &created));
  bool added = ctx->dag->AddEdge(parent, child);
  if (added && ctx->delta != nullptr) {
    ctx->delta->new_edges.emplace_back(parent, child);
  }
  // Newly created nodes are expanded later from the worklist; recursion is
  // avoided so that deep (recursive-DTD) views cannot overflow the stack.
  if (created) ctx->pending.push_back(child);
  return Status::OK();
}

Status Publisher::Generate(Ctx* ctx, NodeId node) {
  const DagView::Node& n = ctx->dag->node(node);
  const std::string type = n.type;  // copy: dag may reallocate
  const Tuple attr = n.attr;
  const Production* prod = atg_->dtd().GetProduction(type);
  if (prod == nullptr) {
    return Status::Internal("no production for type " + type);
  }
  switch (prod->kind) {
    case ContentKind::kPcdata:
    case ContentKind::kEmpty:
      return Status::OK();
    case ContentKind::kSequence: {
      for (const std::string& c : prod->children) {
        const std::vector<size_t>* proj = atg_->SequenceProjection(type, c);
        if (proj == nullptr) {
          return Status::Internal("missing sequence projection " + type +
                                  " -> " + c);
        }
        Tuple child_attr;
        child_attr.reserve(proj->size());
        for (size_t idx : *proj) child_attr.push_back(attr[idx]);
        XVU_RETURN_NOT_OK(LinkChild(ctx, node, c, child_attr));
      }
      return Status::OK();
    }
    case ContentKind::kAlternation: {
      const Atg::AlternationRule* ar = atg_->GetAlternationRule(type);
      if (ar == nullptr) {
        return Status::Internal("missing alternation rule for " + type);
      }
      size_t branch = ar->choose(attr);
      if (branch >= prod->children.size()) {
        return Status::Internal("alternation selector out of range for " +
                                type);
      }
      Tuple child_attr;
      for (size_t idx : ar->projections[branch]) {
        child_attr.push_back(attr[idx]);
      }
      return LinkChild(ctx, node, prod->children[branch], child_attr);
    }
    case ContentKind::kStar: {
      const SpjQuery* rule = atg_->StarRule(type);
      if (rule == nullptr) {
        return Status::Internal("missing star rule for " + type);
      }
      const std::string& child_type = prod->children[0];
      const std::vector<Column>* child_attrs = atg_->AttrSchema(child_type);
      size_t attr_arity = child_attrs == nullptr ? 0 : child_attrs->size();
      std::vector<SpjQuery::WitnessedRow> local_rows;
      const std::vector<SpjQuery::WitnessedRow>* rows_ptr = nullptr;
      if (ctx->bulk) {
        auto it = ctx->bulk_cache.find(type);
        if (it == ctx->bulk_cache.end()) {
          XVU_ASSIGN_OR_RETURN(auto grouped, rule->EvalGroupedByParams(*db_));
          it = ctx->bulk_cache.emplace(type, std::move(grouped)).first;
        }
        Tuple key(attr.begin(),
                  attr.begin() +
                      static_cast<std::ptrdiff_t>(rule->num_params()));
        auto git = it->second.find(key);
        static const std::vector<SpjQuery::WitnessedRow> kNoRows;
        rows_ptr = git == it->second.end() ? &kNoRows : &git->second;
      } else {
        XVU_ASSIGN_OR_RETURN(local_rows, rule->EvalWithWitness(*db_, attr));
        rows_ptr = &local_rows;
      }
      for (const SpjQuery::WitnessedRow& wr : *rows_ptr) {
        Tuple child_attr(wr.projected.begin(),
                         wr.projected.begin() +
                             static_cast<std::ptrdiff_t>(attr_arity));
        XVU_RETURN_NOT_OK(LinkChild(ctx, node, child_type, child_attr));
        if (ctx->store != nullptr) {
          NodeId child = ctx->dag->FindNode(child_type, child_attr);
          XVU_RETURN_NOT_OK(ctx->store->AddEdgeRow(
              ViewStore::EdgeViewName(type, child_type),
              ViewStore::MakeEdgeRow(static_cast<int64_t>(node),
                                     static_cast<int64_t>(child),
                                     wr.projected)));
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled production kind");
}

Status Publisher::Drain(Ctx* ctx) {
  while (!ctx->pending.empty()) {
    NodeId next = ctx->pending.back();
    ctx->pending.pop_back();
    XVU_RETURN_NOT_OK(Generate(ctx, next));
  }
  return Status::OK();
}

Result<DagView> Publisher::PublishAll(ViewStore* store) {
  XVU_RETURN_NOT_OK(atg_->Validate(*db_));
  if (store != nullptr) XVU_RETURN_NOT_OK(RegisterViews(store));
  DagView dag;
  Ctx ctx;
  ctx.dag = &dag;
  ctx.store = store;
  ctx.bulk = true;
  bool created = false;
  XVU_ASSIGN_OR_RETURN(NodeId root,
                       GetOrCreate(&ctx, atg_->dtd().root(), Tuple{},
                                   &created));
  dag.SetRoot(root);
  XVU_RETURN_NOT_OK(Generate(&ctx, root));
  XVU_RETURN_NOT_OK(Drain(&ctx));
  if (!IsAcyclicDag(dag)) {
    return Status::Rejected(
        "published view is cyclic (infinite XML tree); source data violates "
        "the DAG assumption");
  }
  return dag;
}

Result<Publisher::SubtreeResult> Publisher::PublishSubtree(
    const std::string& type, const Tuple& attr, DagView* dag,
    ViewStore* store) {
  SubtreeResult delta;
  Ctx ctx;
  ctx.dag = dag;
  ctx.store = store;
  ctx.delta = &delta;
  bool created = false;
  XVU_ASSIGN_OR_RETURN(NodeId root, GetOrCreate(&ctx, type, attr, &created));
  delta.root = root;
  if (created) {
    XVU_RETURN_NOT_OK(Generate(&ctx, root));
    XVU_RETURN_NOT_OK(Drain(&ctx));
    delta.cyclic = !IsAcyclicDag(*dag);
  }
  return delta;
}

}  // namespace xvu
