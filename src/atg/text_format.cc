#include "src/atg/text_format.h"

#include <cctype>
#include <map>

#include "src/common/str_util.h"

namespace xvu {

namespace {

/// Shared token scanner for the DDL and the embedded SPJ mini-SQL.
class Scanner {
 public:
  explicit Scanner(const std::string& s) : s_(s) {}

  void SkipSpaceAndComments() {
    for (;;) {
      while (pos_ < s_.size() &&
             std::isspace(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
      if (pos_ < s_.size() && s_[pos_] == '#') {
        while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  bool AtEnd() {
    SkipSpaceAndComments();
    return pos_ >= s_.size();
  }

  bool Peek(char c) {
    SkipSpaceAndComments();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool Accept(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (Accept(c)) return Status::OK();
    return Status::InvalidArgument(std::string("expected '") + c + "' at " +
                                   Where());
  }

  /// Identifier or keyword: [A-Za-z_][A-Za-z0-9_]*.
  Result<std::string> Ident() {
    SkipSpaceAndComments();
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected identifier at " + Where());
    }
    return s_.substr(start, pos_ - start);
  }

  /// Peeks the next identifier without consuming it.
  std::string PeekIdent() {
    size_t save = pos_;
    auto id = Ident();
    pos_ = save;
    return id.ok() ? *id : "";
  }

  bool AcceptWord(const std::string& w) {
    size_t save = pos_;
    auto id = Ident();
    if (id.ok() && *id == w) return true;
    pos_ = save;
    return false;
  }

  /// "alias.column" or "$field" or identifier or quoted/numeric literal.
  Result<std::string> Token() {
    SkipSpaceAndComments();
    if (pos_ >= s_.size()) {
      return Status::InvalidArgument("unexpected end of input");
    }
    char c = s_[pos_];
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos_;
      std::string lit;
      while (pos_ < s_.size() && s_[pos_] != quote) lit.push_back(s_[pos_++]);
      if (pos_ >= s_.size()) {
        return Status::InvalidArgument("unterminated literal at " + Where());
      }
      ++pos_;
      return "\"" + lit;  // marker for "quoted"
    }
    std::string out;
    if (c == '$') {
      out.push_back(s_[pos_++]);
    }
    while (pos_ < s_.size()) {
      char d = s_[pos_];
      if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
          d == '.' || d == '-') {
        out.push_back(d);
        ++pos_;
      } else {
        break;
      }
    }
    if (out.empty()) {
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' at " + Where());
    }
    return out;
  }

  std::string Where() const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return "line " + std::to_string(line) + ":" + std::to_string(col);
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

Result<ValueType> ParseType(const std::string& name) {
  if (name == "int") return ValueType::kInt;
  if (name == "string") return ValueType::kString;
  if (name == "bool") return ValueType::kBool;
  return Status::InvalidArgument("unknown attribute type " + name);
}

/// Parses the embedded SPJ query between { and }. `parent_attrs` resolves
/// $field references to parameter indices.
Result<SpjQuery> ParseRuleQuery(Scanner* sc, const Database& catalog,
                                const std::vector<Column>& parent_attrs) {
  XVU_RETURN_NOT_OK(sc->Expect('{'));
  if (!sc->AcceptWord("select")) {
    return Status::InvalidArgument("expected 'select' at " + sc->Where());
  }
  struct SelItem {
    std::string col;
    std::string name;
  };
  std::vector<SelItem> select;
  for (;;) {
    XVU_ASSIGN_OR_RETURN(std::string col, sc->Token());
    if (!sc->AcceptWord("as")) {
      return Status::InvalidArgument("expected 'as' in select list at " +
                                     sc->Where());
    }
    XVU_ASSIGN_OR_RETURN(std::string name, sc->Ident());
    select.push_back({col, name});
    if (!sc->Accept(',')) break;
  }
  if (!sc->AcceptWord("from")) {
    return Status::InvalidArgument("expected 'from' at " + sc->Where());
  }
  SpjQueryBuilder builder(&catalog);
  for (;;) {
    XVU_ASSIGN_OR_RETURN(std::string table, sc->Ident());
    XVU_ASSIGN_OR_RETURN(std::string alias, sc->Ident());
    builder.From(table, alias);
    if (!sc->Accept(',')) break;
  }
  auto param_index = [&](const std::string& field) -> Result<size_t> {
    for (size_t i = 0; i < parent_attrs.size(); ++i) {
      if (parent_attrs[i].name == field) return i;
    }
    return Status::InvalidArgument("unknown parent attribute $" + field);
  };
  if (sc->AcceptWord("where")) {
    for (;;) {
      XVU_ASSIGN_OR_RETURN(std::string lhs, sc->Token());
      XVU_RETURN_NOT_OK(sc->Expect('='));
      XVU_ASSIGN_OR_RETURN(std::string rhs, sc->Token());
      // Normalize so the column reference is on the left.
      bool lhs_is_col =
          lhs[0] != '$' && lhs[0] != '"' && lhs.find('.') != std::string::npos;
      if (!lhs_is_col) std::swap(lhs, rhs);
      if (lhs[0] == '$' || lhs[0] == '"' ||
          lhs.find('.') == std::string::npos) {
        return Status::InvalidArgument(
            "conditions need at least one alias.column side at " +
            sc->Where());
      }
      if (rhs[0] == '$') {
        XVU_ASSIGN_OR_RETURN(size_t p, param_index(rhs.substr(1)));
        builder.WhereParam(lhs, p);
      } else if (rhs[0] == '"') {
        builder.WhereConst(lhs, Value::Str(rhs.substr(1)));
      } else if (rhs.find('.') != std::string::npos) {
        builder.WhereEq(lhs, rhs);
      } else if (rhs == "true" || rhs == "false") {
        builder.WhereConst(lhs, Value::Bool(rhs == "true"));
      } else {
        // Bare token: integer literal.
        Value v = ParseValueAs(rhs, ValueType::kInt);
        if (v.is_null()) {
          return Status::InvalidArgument("cannot parse literal '" + rhs +
                                         "' at " + sc->Where());
        }
        builder.WhereConst(lhs, v);
      }
      if (!sc->AcceptWord("and")) break;
    }
  }
  for (const SelItem& item : select) builder.Select(item.col, item.name);
  XVU_RETURN_NOT_OK(sc->Expect('}'));
  XVU_ASSIGN_OR_RETURN(SpjQuery q, builder.Build());
  return q.WithKeyPreservation(catalog);
}

}  // namespace

Result<Atg> ParseAtgText(const std::string& text, const Database& catalog) {
  Scanner sc(text);
  Atg atg;
  // Sequence productions are resolved after all `type` declarations.
  struct PendingSeq {
    std::string parent;
    std::vector<std::pair<std::string, std::vector<std::string>>> children;
  };
  std::vector<PendingSeq> pending_seqs;
  struct PendingStar {
    std::string parent;
    std::string child;
    size_t text_offset_unused = 0;
    SpjQuery rule;
  };
  std::vector<PendingStar> pending_stars;

  while (!sc.AtEnd()) {
    XVU_ASSIGN_OR_RETURN(std::string kw, sc.Ident());
    if (kw == "root") {
      XVU_ASSIGN_OR_RETURN(std::string r, sc.Ident());
      atg.dtd().SetRoot(r);
      continue;
    }
    if (kw == "type") {
      XVU_ASSIGN_OR_RETURN(std::string name, sc.Ident());
      XVU_RETURN_NOT_OK(sc.Expect('('));
      std::vector<Column> fields;
      if (!sc.Accept(')')) {
        for (;;) {
          XVU_ASSIGN_OR_RETURN(std::string fname, sc.Ident());
          XVU_RETURN_NOT_OK(sc.Expect(':'));
          XVU_ASSIGN_OR_RETURN(std::string tname, sc.Ident());
          XVU_ASSIGN_OR_RETURN(ValueType vt, ParseType(tname));
          fields.push_back(Column{fname, vt});
          if (!sc.Accept(',')) break;
        }
        XVU_RETURN_NOT_OK(sc.Expect(')'));
      }
      XVU_RETURN_NOT_OK(atg.SetAttrSchema(name, std::move(fields)));
      continue;
    }
    if (kw == "element") {
      XVU_ASSIGN_OR_RETURN(std::string name, sc.Ident());
      XVU_RETURN_NOT_OK(sc.Expect('='));
      std::string first = sc.PeekIdent();
      if (first == "PCDATA") {
        (void)sc.Ident();
        XVU_RETURN_NOT_OK(atg.dtd().AddElement(name, Production::Pcdata()));
        continue;
      }
      if (first == "EMPTY") {
        (void)sc.Ident();
        XVU_RETURN_NOT_OK(atg.dtd().AddElement(name, Production::Empty()));
        continue;
      }
      XVU_ASSIGN_OR_RETURN(std::string child, sc.Ident());
      if (sc.Accept('*')) {
        // Star production with a rule query.
        if (!sc.AcceptWord("from")) {
          return Status::InvalidArgument("expected 'from' after " + name +
                                         " = " + child + "* at " +
                                         sc.Where());
        }
        const std::vector<Column>* pattrs = atg.AttrSchema(name);
        std::vector<Column> attrs = pattrs == nullptr ? std::vector<Column>{}
                                                      : *pattrs;
        XVU_ASSIGN_OR_RETURN(SpjQuery rule,
                             ParseRuleQuery(&sc, catalog, attrs));
        XVU_RETURN_NOT_OK(
            atg.dtd().AddElement(name, Production::Star(child)));
        pending_stars.push_back(PendingStar{name, child, 0, std::move(rule)});
        continue;
      }
      // Sequence production: child(field,...) [, child(field,...)]*.
      PendingSeq seq;
      seq.parent = name;
      std::string cur = child;
      for (;;) {
        std::vector<std::string> fields;
        XVU_RETURN_NOT_OK(sc.Expect('('));
        if (!sc.Accept(')')) {
          for (;;) {
            XVU_ASSIGN_OR_RETURN(std::string f, sc.Ident());
            fields.push_back(std::move(f));
            if (!sc.Accept(',')) break;
          }
          XVU_RETURN_NOT_OK(sc.Expect(')'));
        }
        seq.children.emplace_back(cur, std::move(fields));
        if (!sc.Accept(',')) break;
        XVU_ASSIGN_OR_RETURN(cur, sc.Ident());
      }
      std::vector<std::string> child_types;
      child_types.reserve(seq.children.size());
      for (const auto& [c, _] : seq.children) child_types.push_back(c);
      XVU_RETURN_NOT_OK(
          atg.dtd().AddElement(name, Production::Sequence(child_types)));
      pending_seqs.push_back(std::move(seq));
      continue;
    }
    return Status::InvalidArgument("unknown declaration '" + kw + "' at " +
                                   sc.Where());
  }

  // Resolve deferred pieces now that every attribute schema is known.
  for (PendingStar& ps : pending_stars) {
    XVU_RETURN_NOT_OK(atg.SetStarRule(ps.parent, std::move(ps.rule)));
  }
  for (const PendingSeq& seq : pending_seqs) {
    const std::vector<Column>* pattrs = atg.AttrSchema(seq.parent);
    for (const auto& [child, fields] : seq.children) {
      std::vector<size_t> proj;
      proj.reserve(fields.size());
      for (const std::string& f : fields) {
        size_t idx = Schema::npos;
        if (pattrs != nullptr) {
          for (size_t i = 0; i < pattrs->size(); ++i) {
            if ((*pattrs)[i].name == f) {
              idx = i;
              break;
            }
          }
        }
        if (idx == Schema::npos) {
          return Status::InvalidArgument("sequence child " + child + " of " +
                                         seq.parent +
                                         " references unknown parent field " +
                                         f);
        }
        proj.push_back(idx);
      }
      XVU_RETURN_NOT_OK(atg.SetSequenceProjection(seq.parent, child, proj));
    }
  }
  if (atg.AttrSchema(atg.dtd().root()) == nullptr) {
    XVU_RETURN_NOT_OK(atg.SetAttrSchema(atg.dtd().root(), {}));
  }
  XVU_RETURN_NOT_OK(atg.Validate(catalog));
  return atg;
}

namespace {

/// Renders a rule query back into the parseable mini-SQL. Requires the
/// catalog to recover real column names.
std::string RenderRule(const SpjQuery& q, const Database& catalog,
                       const std::vector<Column>& parent_attrs) {
  auto col_name = [&](const SpjColRef& ref) {
    const Table* t = catalog.GetTable(q.tables()[ref.table_pos].table);
    std::string col = t != nullptr && ref.col_idx < t->schema().arity()
                          ? t->schema().columns()[ref.col_idx].name
                          : "c" + std::to_string(ref.col_idx);
    return q.tables()[ref.table_pos].alias + "." + col;
  };
  std::vector<std::string> sel, from, where;
  for (const SpjOutput& o : q.outputs()) {
    sel.push_back(col_name(o.ref) + " as " + o.name);
  }
  for (const SpjQuery::TableRef& t : q.tables()) {
    from.push_back(t.table + " " + t.alias);
  }
  for (const SpjCondition& c : q.conditions()) {
    std::string lhs = col_name(c.lhs);
    switch (c.kind) {
      case SpjCondition::Kind::kColCol:
        where.push_back(lhs + " = " + col_name(c.rhs));
        break;
      case SpjCondition::Kind::kColColNe:
        where.push_back(lhs + " != " + col_name(c.rhs));
        break;
      case SpjCondition::Kind::kColConst: {
        std::string v;
        switch (c.constant.type()) {
          case ValueType::kString:
            v = "\"" + c.constant.as_str() + "\"";
            break;
          default:
            v = c.constant.ToString();
        }
        where.push_back(lhs + " = " + v);
        break;
      }
      case SpjCondition::Kind::kColParam:
        where.push_back(lhs + " = $" +
                        (c.param_idx < parent_attrs.size()
                             ? parent_attrs[c.param_idx].name
                             : std::to_string(c.param_idx)));
        break;
    }
  }
  std::string out = "  select " + Join(sel, ", ") + "\n  from " +
                    Join(from, ", ");
  if (!where.empty()) out += "\n  where " + Join(where, " and ");
  return out;
}

}  // namespace

std::string AtgToText(const Atg& atg, const Database& catalog) {
  const Dtd& dtd = atg.dtd();
  std::string out = "root " + dtd.root() + "\n\n";
  for (const std::string& t : dtd.Types()) {
    const std::vector<Column>* attrs = atg.AttrSchema(t);
    out += "type " + t + "(";
    if (attrs != nullptr) {
      for (size_t i = 0; i < attrs->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*attrs)[i].name;
        out += ": ";
        out += ValueTypeName((*attrs)[i].type);
      }
    }
    out += ")\n";
  }
  out += "\n";
  for (const std::string& t : dtd.Types()) {
    const Production* p = dtd.GetProduction(t);
    switch (p->kind) {
      case ContentKind::kPcdata:
        out += "element " + t + " = PCDATA\n";
        break;
      case ContentKind::kEmpty:
        out += "element " + t + " = EMPTY\n";
        break;
      case ContentKind::kStar: {
        const SpjQuery* rule = atg.StarRule(t);
        out += "element " + t + " = " + p->children[0] + "* from {\n" +
               (rule != nullptr
                    ? RenderRule(*rule, catalog,
                                 atg.AttrSchema(t) != nullptr
                                     ? *atg.AttrSchema(t)
                                     : std::vector<Column>{})
                    : "  # <missing rule>") +
               "\n}\n";
        break;
      }
      case ContentKind::kSequence: {
        out += "element " + t + " = ";
        const std::vector<Column>* pattrs = atg.AttrSchema(t);
        for (size_t i = 0; i < p->children.size(); ++i) {
          if (i > 0) out += ", ";
          out += p->children[i];
          out += "(";
          const std::vector<size_t>* proj =
              atg.SequenceProjection(t, p->children[i]);
          if (proj != nullptr && pattrs != nullptr) {
            for (size_t j = 0; j < proj->size(); ++j) {
              if (j > 0) out += ", ";
              out += (*pattrs)[(*proj)[j]].name;
            }
          }
          out += ")";
        }
        out += "\n";
        break;
      }
      case ContentKind::kAlternation:
        out += "# element " + t +
               " uses an alternation production (not expressible in the "
               "text format)\n";
        break;
    }
  }
  return out;
}

}  // namespace xvu
