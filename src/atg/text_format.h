#ifndef XVU_ATG_TEXT_FORMAT_H_
#define XVU_ATG_TEXT_FORMAT_H_

#include <string>

#include "src/atg/atg.h"
#include "src/common/status.h"

namespace xvu {

/// Parses a textual ATG definition, mirroring the paper's Fig.2 notation.
/// Example (the registrar σ0):
///
///   root db
///
///   type db()
///   type course(cno: string, title: string)
///   type prereq(cno: string)
///   type takenBy(cno: string)
///   type student(ssn: string, name: string)
///   type cno(text: string)
///   type title(text: string)
///   type ssn(text: string)
///   type name(text: string)
///
///   element db = course* from {
///     select c.cno as cno, c.title as title
///     from course c
///     where c.dept = "CS"
///   }
///   element course = cno(cno), title(title), prereq(cno), takenBy(cno)
///   element prereq = course* from {
///     select c.cno as cno, c.title as title
///     from prereq p, course c
///     where p.cno1 = $cno and p.cno2 = c.cno
///   }
///   element takenBy = student* from {
///     select s.ssn as ssn, s.name as name
///     from enroll e, student s
///     where e.cno = $cno and e.ssn = s.ssn
///   }
///   element student = ssn(ssn), name(name)
///   element cno = PCDATA
///   element title = PCDATA
///   element ssn = PCDATA
///   element name = PCDATA
///
/// Semantics:
///   - `type A(f: t, ...)` declares the semantic attribute $A (types:
///     int, string, bool); the root's type may be omitted (empty tuple).
///   - `element A = B* from { <SPJ> }` is a star production; the SPJ
///     query's SELECT list must begin with $B's fields (by name);
///     `$field` in the WHERE clause refers to $A's field of that name.
///     Rule queries are automatically extended to key preservation.
///   - `element A = B1(f,...), B2(f,...)` is a sequence production; the
///     parenthesized names are $A fields forming each child's attribute.
///   - `element A = PCDATA` / `element A = EMPTY` are leaves.
///   - `#` starts a comment until end of line.
///   - Alternation productions are not expressible in the text format
///     (their branch selector is a function); use the C++ API.
///
/// The catalog supplies base-table schemas for resolving rule queries.
Result<Atg> ParseAtgText(const std::string& text, const Database& catalog);

/// Renders an ATG back into the text format (the catalog recovers real
/// column names for the rule queries). Round-trips through ParseAtgText
/// for ATGs without alternation rules.
std::string AtgToText(const Atg& atg, const Database& catalog);

}  // namespace xvu

#endif  // XVU_ATG_TEXT_FORMAT_H_
