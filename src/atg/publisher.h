#ifndef XVU_ATG_PUBLISHER_H_
#define XVU_ATG_PUBLISHER_H_

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/atg/atg.h"
#include "src/dag/dag_view.h"
#include "src/viewupdate/view_store.h"

namespace xvu {

/// Schema-directed publisher: evaluates an ATG σ over a relational
/// instance I, producing the DAG compression of the XML view σ(I)
/// (Sections 2.2–2.3).
///
/// Generation is top-down. The Skolem function gen_id is realized by
/// DagView's (type, $A) -> NodeId index: when a (type, attribute) pair is
/// seen again, the existing node is linked instead of being re-generated —
/// this is both the DAG compression and the termination argument for
/// recursive DTDs over finite instances. If a (type, $A) pair transitively
/// requires itself (cyclic source data), publishing fails: the view would
/// be an infinite tree and its compression cyclic, which the paper's DAG
/// setting excludes.
class Publisher {
 public:
  Publisher(const Atg* atg, const Database* db) : atg_(atg), db_(db) {}

  /// Publishes the whole view. If `store` is non-null, it is populated
  /// with the relational coding V_σ: edge view metadata + witness rows,
  /// and gen_<type> node tables.
  Result<DagView> PublishAll(ViewStore* store);

  /// Registers (only) the edge-view metadata and gen tables for σ in
  /// `store`, without publishing data.
  Status RegisterViews(ViewStore* store) const;

  /// Result of incrementally publishing one subtree ST(A, t).
  struct SubtreeResult {
    NodeId root = kInvalidNode;
    /// Edges added to the DAG, in creation order (E_A of Algorithm
    /// Xinsert).
    std::vector<std::pair<NodeId, NodeId>> new_edges;
    /// Nodes created by this publication (N_A).
    std::vector<NodeId> new_nodes;
    /// True when the publication made the view cyclic (source data forms a
    /// loop through (type, attr) pairs). The caller must roll the
    /// publication back; the delta above describes exactly what to undo.
    bool cyclic = false;
  };

  /// Publishes the subtree for element type A with semantic attribute `t`
  /// into an existing DAG, sharing any (type, attr) nodes already present.
  /// Also appends witness rows to `store` when non-null.
  Result<SubtreeResult> PublishSubtree(const std::string& type,
                                       const Tuple& attr, DagView* dag,
                                       ViewStore* store);

 private:
  struct Ctx {
    DagView* dag = nullptr;
    ViewStore* store = nullptr;
    SubtreeResult* delta = nullptr;  ///< non-null for subtree publishing
    std::vector<NodeId> pending;     ///< created, not yet expanded
    /// Full publication: rule queries are evaluated once per *type*,
    /// grouped by parameter values (O(|I|) total), instead of once per
    /// node (O(|I|) each — quadratic overall). Subtree publication keeps
    /// the per-node plan: it touches few nodes.
    bool bulk = false;
    std::map<std::string,
             std::unordered_map<Tuple, std::vector<SpjQuery::WitnessedRow>,
                                TupleHash>>
        bulk_cache;
  };

  Status Generate(Ctx* ctx, NodeId node);
  Status Drain(Ctx* ctx);
  Result<NodeId> GetOrCreate(Ctx* ctx, const std::string& type,
                             const Tuple& attr, bool* created);
  Status LinkChild(Ctx* ctx, NodeId parent, const std::string& child_type,
                   const Tuple& child_attr);

  const Atg* atg_;
  const Database* db_;
};

}  // namespace xvu

#endif  // XVU_ATG_PUBLISHER_H_
