#ifndef XVU_ATG_ATG_H_
#define XVU_ATG_ATG_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dtd/dtd.h"
#include "src/relational/spj.h"

namespace xvu {

/// An Attribute Translation Grammar (Section 2.2): a mapping
/// σ : R -> D from a relational schema to a (possibly recursive) DTD.
///
/// Per element type A the ATG defines a semantic attribute $A (a typed
/// tuple). Per production it defines how children and their attributes are
/// generated:
///   - A -> B*          : an SPJ rule query, parameterized by $A's fields,
///                        whose result rows are the $B values (one child
///                        per row). The rule must be key-preserving; its
///                        leading outputs are $B's fields, any further
///                        outputs are the key columns added for key
///                        preservation (Section 4.1).
///   - A -> B1,...,Bn   : per child, a projection of $A's fields giving
///                        $Bi (like "$cno = $course.cno" in Fig.2).
///   - A -> B1+...+Bn   : a selector choosing the branch from $A, plus a
///                        per-branch projection.
///   - A -> pcdata      : leaf; the text is $A rendered.
///   - A -> ε           : leaf without text.
///
/// The root's semantic attribute is the empty tuple.
class Atg {
 public:
  struct AlternationRule {
    /// Returns the branch index in [0, n) chosen for a given $A.
    std::function<size_t(const Tuple&)> choose;
    /// Per branch, indices of $A fields forming the child's attribute.
    std::vector<std::vector<size_t>> projections;
  };

  Dtd& dtd() { return dtd_; }
  const Dtd& dtd() const { return dtd_; }

  /// Declares the semantic-attribute schema of `type`.
  Status SetAttrSchema(const std::string& type, std::vector<Column> fields);
  const std::vector<Column>* AttrSchema(const std::string& type) const;

  /// Attaches the rule query to a star production parent -> B*.
  /// The query must already be key-preserving (use
  /// SpjQuery::WithKeyPreservation); its params bind to $parent's fields.
  Status SetStarRule(const std::string& parent, SpjQuery rule);
  const SpjQuery* StarRule(const std::string& parent) const;

  /// Attaches the $child attribute projection for a sequence production.
  Status SetSequenceProjection(const std::string& parent,
                               const std::string& child,
                               std::vector<size_t> parent_attr_indices);
  const std::vector<size_t>* SequenceProjection(const std::string& parent,
                                                const std::string& child)
      const;

  Status SetAlternationRule(const std::string& parent, AlternationRule rule);
  const AlternationRule* GetAlternationRule(const std::string& parent) const;

  /// Full consistency check against the base catalog: DTD valid; every
  /// type has an attribute schema (root's may be implicit/empty); every
  /// star production has a key-preserving rule whose leading outputs match
  /// the child's attribute arity; sequence projections in range.
  Status Validate(const Database& catalog) const;

 private:
  Dtd dtd_;
  std::map<std::string, std::vector<Column>> attr_schemas_;
  std::map<std::string, SpjQuery> star_rules_;
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      seq_projections_;
  std::map<std::string, AlternationRule> alternation_rules_;
};

}  // namespace xvu

#endif  // XVU_ATG_ATG_H_
