#include "src/atg/atg.h"

namespace xvu {

Status Atg::SetAttrSchema(const std::string& type,
                          std::vector<Column> fields) {
  attr_schemas_[type] = std::move(fields);
  return Status::OK();
}

const std::vector<Column>* Atg::AttrSchema(const std::string& type) const {
  auto it = attr_schemas_.find(type);
  return it == attr_schemas_.end() ? nullptr : &it->second;
}

Status Atg::SetStarRule(const std::string& parent, SpjQuery rule) {
  const Production* p = dtd_.GetProduction(parent);
  if (p == nullptr || p->kind != ContentKind::kStar) {
    return Status::InvalidArgument("type " + parent +
                                   " has no star production");
  }
  star_rules_.insert_or_assign(parent, std::move(rule));
  return Status::OK();
}

const SpjQuery* Atg::StarRule(const std::string& parent) const {
  auto it = star_rules_.find(parent);
  return it == star_rules_.end() ? nullptr : &it->second;
}

Status Atg::SetSequenceProjection(const std::string& parent,
                                  const std::string& child,
                                  std::vector<size_t> parent_attr_indices) {
  const Production* p = dtd_.GetProduction(parent);
  if (p == nullptr || p->kind != ContentKind::kSequence) {
    return Status::InvalidArgument("type " + parent +
                                   " has no sequence production");
  }
  seq_projections_[{parent, child}] = std::move(parent_attr_indices);
  return Status::OK();
}

const std::vector<size_t>* Atg::SequenceProjection(
    const std::string& parent, const std::string& child) const {
  auto it = seq_projections_.find({parent, child});
  return it == seq_projections_.end() ? nullptr : &it->second;
}

Status Atg::SetAlternationRule(const std::string& parent,
                               AlternationRule rule) {
  const Production* p = dtd_.GetProduction(parent);
  if (p == nullptr || p->kind != ContentKind::kAlternation) {
    return Status::InvalidArgument("type " + parent +
                                   " has no alternation production");
  }
  alternation_rules_.insert_or_assign(parent, std::move(rule));
  return Status::OK();
}

const Atg::AlternationRule* Atg::GetAlternationRule(
    const std::string& parent) const {
  auto it = alternation_rules_.find(parent);
  return it == alternation_rules_.end() ? nullptr : &it->second;
}

Status Atg::Validate(const Database& catalog) const {
  XVU_RETURN_NOT_OK(dtd_.Validate());
  for (const std::string& type : dtd_.Types()) {
    const Production* prod = dtd_.GetProduction(type);
    const std::vector<Column>* attrs = AttrSchema(type);
    if (attrs == nullptr && type != dtd_.root()) {
      return Status::InvalidArgument("type " + type +
                                     " has no attribute schema");
    }
    size_t parent_arity = attrs == nullptr ? 0 : attrs->size();
    switch (prod->kind) {
      case ContentKind::kPcdata:
      case ContentKind::kEmpty:
        break;
      case ContentKind::kStar: {
        const SpjQuery* rule = StarRule(type);
        if (rule == nullptr) {
          return Status::InvalidArgument("star production of " + type +
                                         " has no rule query");
        }
        if (!rule->IsKeyPreserving(catalog)) {
          return Status::InvalidArgument("rule query of " + type +
                                         " is not key-preserving");
        }
        if (rule->num_params() > parent_arity) {
          return Status::InvalidArgument(
              "rule query of " + type + " uses " +
              std::to_string(rule->num_params()) + " params but $" + type +
              " has arity " + std::to_string(parent_arity));
        }
        const std::vector<Column>* child_attrs =
            AttrSchema(prod->children[0]);
        if (child_attrs == nullptr ||
            rule->outputs().size() < child_attrs->size()) {
          return Status::InvalidArgument(
              "rule query of " + type +
              " projects fewer columns than $" + prod->children[0]);
        }
        break;
      }
      case ContentKind::kSequence: {
        for (const std::string& c : prod->children) {
          const std::vector<size_t>* proj = SequenceProjection(type, c);
          if (proj == nullptr) {
            return Status::InvalidArgument("sequence child " + c + " of " +
                                           type + " has no projection");
          }
          const std::vector<Column>* child_attrs = AttrSchema(c);
          if (child_attrs == nullptr || proj->size() != child_attrs->size()) {
            return Status::InvalidArgument("projection arity mismatch for " +
                                           c + " under " + type);
          }
          for (size_t idx : *proj) {
            if (idx >= parent_arity) {
              return Status::InvalidArgument(
                  "projection index out of range for " + c + " under " +
                  type);
            }
          }
        }
        break;
      }
      case ContentKind::kAlternation: {
        const AlternationRule* ar = GetAlternationRule(type);
        if (ar == nullptr) {
          return Status::InvalidArgument("alternation production of " + type +
                                         " has no rule");
        }
        if (ar->projections.size() != prod->children.size()) {
          return Status::InvalidArgument(
              "alternation rule of " + type +
              " must have one projection per branch");
        }
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace xvu
